//! `dbpsim` — command-line front-end for the DBP simulator.
//!
//! ```console
//! $ dbpsim list                                 # available mixes & benchmarks
//! $ dbpsim run --mix mix50-1 --policy dbp       # one measurement
//! $ dbpsim run --mix mix100-1 --policy dbp --scheduler tcm --csv
//! $ dbpsim run --bench mcf,libquantum --policy equal --instructions 500000
//! $ dbpsim compare --mix mix75-1                # all policies side by side
//! ```
//!
//! Argument parsing is hand-rolled (the workspace is dependency-minimal);
//! see `dbpsim help` for the full grammar.

use std::process::ExitCode;

use dbp_repro::dbp::policy::PolicyKind;
use dbp_repro::obs::{export, Json, Prof, Recorder, RecorderConfig};
use dbp_repro::sim::report::{f3, run_result_json, Table};
use dbp_repro::sim::{runner, SchedulerKind, SimConfig};
use dbp_repro::workloads::{mixes_4core, profiles, Mix};

const HELP: &str = "\
dbpsim — Dynamic Bank Partitioning simulator (HPCA 2014 reproduction)

USAGE:
    dbpsim <COMMAND> [OPTIONS]

COMMANDS:
    list                     List available mixes and benchmarks
    run                      Measure one mix under one configuration
    compare                  Measure one mix under every policy
    help                     Show this message

OPTIONS (run / compare):
    --mix <name>             A predefined mix (see `dbpsim list`)
    --bench <a,b,...>        Ad-hoc mix from benchmark names (alternative to --mix)
    --policy <p>             shared | equal | dbp | mcp        [default: dbp]
    --scheduler <s>          fcfs | frfcfs | frfcfs-cap | parbs | atlas |
                             bliss | tcm                       [default: frfcfs]
    --instructions <n>       Measured instructions per thread  [default: 1000000]
    --warmup <n>             Warmup instructions per thread    [default: 500000]
    --channels <n>           DRAM channels (power of two)      [default: 2]
    --banks <n>              Banks per rank (power of two)     [default: 8]
    --epoch <cycles>         Repartitioning epoch, CPU cycles  [default: 1000000]
    --csv                    Emit CSV instead of an aligned table

TELEMETRY (run only):
    --trace-out <file>       Write a Chrome trace_event JSON of the shared
                             run (open in chrome://tracing or ui.perfetto.dev)
    --metrics-out <file>     Write per-epoch metrics + event log as JSON
    --latency-out <file>     Write per-request latency anatomy as JSON:
                             per-core/per-bank histograms, component
                             breakdowns, and the core-by-core interference
                             matrices (render with `dbpreport <file>`)
    --profile-out <file>     Self-profile the shared run (host wall-clock
                             spans + work counters) and write the profile
                             JSON (render with `dbpprof <file>`)
    --audit-out <file>       Run shadow policies alongside the live one
                             (observation-only) and write the decision
                             audit JSON: shadow-vs-live allocations,
                             prediction accuracy, and convergence
                             telemetry (render with `dbpaudit <file>`)
";

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s {
        "shared" | "none" => Ok(PolicyKind::Unpartitioned),
        "equal" => Ok(PolicyKind::Equal),
        "dbp" => Ok(PolicyKind::Dbp(Default::default())),
        "mcp" => Ok(PolicyKind::Mcp(Default::default())),
        other => Err(format!("unknown policy {other:?} (shared|equal|dbp|mcp)")),
    }
}

fn parse_scheduler(s: &str) -> Result<SchedulerKind, String> {
    match s {
        "fcfs" => Ok(SchedulerKind::Fcfs),
        "frfcfs" => Ok(SchedulerKind::FrFcfs),
        "frfcfs-cap" => Ok(SchedulerKind::FrFcfsCap(Default::default())),
        "parbs" => Ok(SchedulerKind::ParBs(Default::default())),
        "atlas" => Ok(SchedulerKind::Atlas(Default::default())),
        "bliss" => Ok(SchedulerKind::Bliss(Default::default())),
        "tcm" => Ok(SchedulerKind::Tcm(Default::default())),
        other => Err(format!(
            "unknown scheduler {other:?} (fcfs|frfcfs|frfcfs-cap|parbs|atlas|bliss|tcm)"
        )),
    }
}

#[derive(Debug)]
struct Options {
    mix: Option<String>,
    bench: Option<String>,
    policy: PolicyKind,
    scheduler: SchedulerKind,
    instructions: u64,
    warmup: u64,
    channels: u32,
    banks: u32,
    epoch: u64,
    csv: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    latency_out: Option<String>,
    profile_out: Option<String>,
    audit_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            mix: None,
            bench: None,
            policy: PolicyKind::Dbp(Default::default()),
            scheduler: SchedulerKind::FrFcfs,
            instructions: 1_000_000,
            warmup: 500_000,
            channels: 2,
            banks: 8,
            epoch: 1_000_000,
            csv: false,
            trace_out: None,
            metrics_out: None,
            latency_out: None,
            profile_out: None,
            audit_out: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--mix" => opts.mix = Some(value("--mix")?),
            "--bench" => opts.bench = Some(value("--bench")?),
            "--policy" => opts.policy = parse_policy(&value("--policy")?)?,
            "--scheduler" => opts.scheduler = parse_scheduler(&value("--scheduler")?)?,
            "--instructions" => {
                opts.instructions =
                    value("--instructions")?.parse().map_err(|e| format!("--instructions: {e}"))?;
            }
            "--warmup" => {
                opts.warmup = value("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?;
            }
            "--channels" => {
                opts.channels =
                    value("--channels")?.parse().map_err(|e| format!("--channels: {e}"))?;
            }
            "--banks" => {
                opts.banks = value("--banks")?.parse().map_err(|e| format!("--banks: {e}"))?;
            }
            "--epoch" => {
                opts.epoch = value("--epoch")?.parse().map_err(|e| format!("--epoch: {e}"))?;
            }
            "--csv" => opts.csv = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--latency-out" => opts.latency_out = Some(value("--latency-out")?),
            "--profile-out" => opts.profile_out = Some(value("--profile-out")?),
            "--audit-out" => opts.audit_out = Some(value("--audit-out")?),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn resolve_mix(opts: &Options) -> Result<Mix, String> {
    match (&opts.mix, &opts.bench) {
        (Some(name), None) => mixes_4core()
            .into_iter()
            .find(|m| m.name == name.as_str())
            .ok_or_else(|| format!("unknown mix {name:?}; see `dbpsim list`")),
        (None, Some(list)) => {
            let benchmarks: Vec<&'static str> = list
                .split(',')
                .map(|n| {
                    profiles::PROFILES
                        .iter()
                        .find(|p| p.name == n.trim())
                        .map(|p| p.name)
                        .ok_or_else(|| format!("unknown benchmark {n:?}; see `dbpsim list`"))
                })
                .collect::<Result<_, _>>()?;
            if benchmarks.is_empty() {
                return Err("--bench needs at least one benchmark".into());
            }
            Ok(Mix { name: "custom", intensive_pct: 0, benchmarks })
        }
        (Some(_), Some(_)) => Err("--mix and --bench are mutually exclusive".into()),
        (None, None) => Err("one of --mix or --bench is required".into()),
    }
}

fn config_for(opts: &Options) -> Result<SimConfig, String> {
    let mut cfg = SimConfig {
        policy: opts.policy,
        scheduler: opts.scheduler,
        target_instructions: opts.instructions,
        warmup_instructions: opts.warmup,
        epoch_cpu_cycles: opts.epoch,
        ..Default::default()
    };
    cfg.dram.channels = opts.channels;
    cfg.dram.banks_per_rank = opts.banks;
    // Instruction feeding must be at least as frequent as epochs.
    cfg.instr_feed_interval = cfg.instr_feed_interval.min(opts.epoch);
    cfg.validate()?;
    Ok(cfg)
}

fn result_table(mix: &Mix, run: &runner::MixRun) -> Table {
    let mut t =
        Table::new(["thread", "benchmark", "IPC", "alone", "slowdown", "MPKI", "RBL", "BLP"]);
    for (i, name) in mix.benchmarks.iter().enumerate() {
        let th = &run.shared.threads[i];
        t.row([
            i.to_string(),
            (*name).to_owned(),
            f3(th.ipc),
            f3(run.alone_ipcs[i]),
            f3(1.0 / run.metrics.speedups[i]),
            format!("{:.1}", th.mpki),
            format!("{:.2}", th.rbl),
            format!("{:.2}", th.blp),
        ]);
    }
    t
}

fn cmd_list() {
    println!("mixes:");
    for m in mixes_4core() {
        println!(
            "  {:<10} ({:>3}% intensive)  {}",
            m.name,
            m.intensive_pct,
            m.benchmarks.join(", ")
        );
    }
    println!("\nbenchmarks:");
    for p in profiles::PROFILES {
        println!(
            "  {:<12} {:?}  MPKI {:>5.1}  RBL {:.2}  BLP {:.1}",
            p.name,
            p.class(),
            p.mpki,
            p.rbl,
            p.blp
        );
    }
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let mix = resolve_mix(opts)?;
    let cfg = config_for(opts)?;
    eprintln!(
        "running {} [{}] under {} / {} ...",
        mix.name,
        mix.benchmarks.join(", "),
        cfg.scheduler.label(),
        cfg.policy.label(),
    );
    let telemetry_wanted = opts.trace_out.is_some()
        || opts.metrics_out.is_some()
        || opts.latency_out.is_some()
        || opts.audit_out.is_some();
    let rec = if telemetry_wanted {
        Recorder::new(RecorderConfig { audit: opts.audit_out.is_some(), ..Default::default() })
    } else {
        Recorder::disabled()
    };
    let prof = if opts.profile_out.is_some() { Prof::enabled() } else { Prof::disabled() };
    let run = if telemetry_wanted || prof.is_enabled() {
        runner::run_mix_instrumented(&cfg, &mix, rec.clone(), prof.clone())
    } else {
        runner::run_mix(&cfg, &mix)
    };
    if telemetry_wanted {
        write_telemetry(opts, &cfg, &mix, &run, &rec)?;
    }
    if let Some(path) = &opts.profile_out {
        let profile = prof.snapshot();
        let summary = Json::obj([
            ("source", Json::str("dbpsim run")),
            ("mix", Json::str(mix.name)),
            ("policy", Json::str(cfg.policy.label())),
            ("scheduler", Json::str(cfg.scheduler.label())),
        ]);
        let doc = export::profile_document(&profile, summary);
        std::fs::write(path, doc.to_json()).map_err(|e| format!("--profile-out {path}: {e}"))?;
        eprintln!(
            "wrote self-profile ({} root span(s), {} counter(s)) to {path} \
             (render with `dbpprof {path}`)",
            profile.spans.len(),
            profile.counters.len()
        );
    }
    let t = result_table(&mix, &run);
    if opts.csv {
        print!("{}", t.to_csv());
    } else {
        println!("{t}");
    }
    println!(
        "weighted speedup {:.3} | harmonic speedup {:.3} | maximum slowdown {:.3} | row hits {:.1}%",
        run.metrics.weighted_speedup,
        run.metrics.harmonic_speedup,
        run.metrics.max_slowdown,
        run.shared.row_hit_rate * 100.0
    );
    Ok(())
}

fn write_telemetry(
    opts: &Options,
    cfg: &SimConfig,
    mix: &Mix,
    run: &runner::MixRun,
    rec: &Recorder,
) -> Result<(), String> {
    let telemetry = rec.snapshot();
    if let Some(path) = &opts.trace_out {
        let doc = export::chrome_trace(&telemetry);
        std::fs::write(path, doc.to_json()).map_err(|e| format!("--trace-out {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = &opts.metrics_out {
        let summary = Json::obj([
            ("mix", Json::str(mix.name)),
            ("benchmarks", Json::arr(mix.benchmarks.iter().map(|b| Json::str(*b)))),
            ("policy", Json::str(cfg.policy.label())),
            ("scheduler", Json::str(cfg.scheduler.label())),
            ("weighted_speedup", Json::num(run.metrics.weighted_speedup)),
            ("harmonic_speedup", Json::num(run.metrics.harmonic_speedup)),
            ("max_slowdown", Json::num(run.metrics.max_slowdown)),
            ("run", run_result_json(&run.shared)),
        ]);
        let doc = export::metrics_document(&telemetry, summary);
        std::fs::write(path, doc.to_json()).map_err(|e| format!("--metrics-out {path}: {e}"))?;
        eprintln!(
            "wrote metrics ({} epochs, {} events) to {path}",
            telemetry.series.len(),
            telemetry.events.len()
        );
    }
    if let Some(path) = &opts.latency_out {
        let report = telemetry
            .latency
            .as_ref()
            .ok_or_else(|| format!("--latency-out {path}: run produced no latency anatomy"))?;
        let summary = Json::obj([
            ("mix", Json::str(mix.name)),
            ("policy", Json::str(cfg.policy.label())),
            ("scheduler", Json::str(cfg.scheduler.label())),
        ]);
        let doc = export::latency_document(report, summary);
        std::fs::write(path, doc.to_json()).map_err(|e| format!("--latency-out {path}: {e}"))?;
        eprintln!(
            "wrote latency anatomy ({} reads) to {path} (render with `dbpreport {path}`)",
            report.total_reads()
        );
    }
    if let Some(path) = &opts.audit_out {
        let report = telemetry
            .audit
            .as_ref()
            .ok_or_else(|| format!("--audit-out {path}: run produced no audit report"))?;
        let summary = Json::obj([
            ("mix", Json::str(mix.name)),
            ("policy", Json::str(cfg.policy.label())),
            ("scheduler", Json::str(cfg.scheduler.label())),
        ]);
        let doc = export::audit_document(report, summary);
        std::fs::write(path, doc.to_json()).map_err(|e| format!("--audit-out {path}: {e}"))?;
        eprintln!(
            "wrote decision audit ({} decision(s), {} shadow policies) to {path} \
             (render with `dbpaudit {path}`)",
            report.convergence.decisions,
            report.shadows.len()
        );
    }
    Ok(())
}

fn cmd_compare(opts: &Options) -> Result<(), String> {
    let mix = resolve_mix(opts)?;
    let cfg = config_for(opts)?;
    let alone = runner::alone_ipcs(&cfg, &mix);
    let mut t = Table::new(["policy", "WS", "HS", "MS", "rowhit"]);
    for policy in [
        PolicyKind::Unpartitioned,
        PolicyKind::Equal,
        PolicyKind::Dbp(Default::default()),
        PolicyKind::Mcp(Default::default()),
    ] {
        let mut c = cfg.clone();
        c.policy = policy;
        let run = runner::run_mix_with_alone(&c, &mix, alone.clone());
        t.row([
            policy.label().to_owned(),
            f3(run.metrics.weighted_speedup),
            f3(run.metrics.harmonic_speedup),
            f3(run.metrics.max_slowdown),
            format!("{:.1}%", run.shared.row_hit_rate * 100.0),
        ]);
    }
    if opts.csv {
        print!("{}", t.to_csv());
    } else {
        println!("{t}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match cmd {
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => parse_options(rest).and_then(|o| cmd_run(&o)),
        "compare" => parse_options(rest).and_then(|o| cmd_compare(&o)),
        other => Err(format!("unknown command {other:?}; try `dbpsim help`")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
