//! Umbrella crate for the Dynamic Bank Partitioning (HPCA 2014) reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests in the repository root can use a single dependency.
//!
//! See the crate-level docs of [`dbp_sim`] for the top-level simulator API,
//! and [`dbp_core`] for the paper's contribution (the DBP policy family).

pub use dbp_cache as cache;
pub use dbp_core as dbp;
pub use dbp_cpu as cpu;
pub use dbp_dram as dram;
pub use dbp_memctrl as memctrl;
pub use dbp_obs as obs;
pub use dbp_osmem as osmem;
pub use dbp_sim as sim;
pub use dbp_util as util;
pub use dbp_workloads as workloads;
