#!/usr/bin/env sh
# Tier-1 gate: the workspace must build and test hermetically.
#
# --offline  proves no network / registry access is needed (the build is
#            path-dependencies only; see DESIGN.md "Hermetic builds").
# --locked   proves Cargo.lock is in sync with the manifests.
#
# DBP_BENCH_ITERS keeps the bench compile-and-smoke cheap in CI.
set -eux

cargo build --release --offline --locked --workspace
cargo test -q --offline --locked --workspace
cargo clippy --offline --locked --workspace -- -D warnings
cargo check --benches --offline --locked --workspace
# Benches run with the package dir as cwd, so hand them an absolute path.
DBP_BENCH_ITERS=2 DBP_BENCH_WARMUP=0 DBP_BENCH_JSON="$(pwd)/BENCH_results.json" \
    cargo bench -q --offline --locked -p dbp-bench --bench micro
./target/release/jsonlint --require-key benchmarks BENCH_results.json

# Telemetry smoke test: a tiny traced run must produce machine-readable
# exports that the in-tree JSON parser accepts.
./target/release/dbpsim run --bench mcf,povray \
    --instructions 30000 --warmup 10000 --epoch 20000 --policy dbp \
    --trace-out target/ci-trace.json --metrics-out target/ci-metrics.json \
    > /dev/null
./target/release/jsonlint --require-key traceEvents target/ci-trace.json
./target/release/jsonlint --require-key epochs --require-key events target/ci-metrics.json
