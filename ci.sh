#!/usr/bin/env sh
# Tier-1 gate: the workspace must build and test hermetically.
#
# --offline  proves no network / registry access is needed (the build is
#            path-dependencies only; see DESIGN.md "Hermetic builds").
# --locked   proves Cargo.lock is in sync with the manifests.
#
# DBP_BENCH_ITERS keeps the bench compile-and-smoke cheap in CI.
set -eux

cargo build --release --offline --locked --workspace
cargo test -q --offline --locked --workspace
cargo check --benches --offline --locked --workspace
DBP_BENCH_ITERS=2 DBP_BENCH_WARMUP=0 cargo bench -q --offline --locked -p dbp-bench --bench micro
