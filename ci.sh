#!/usr/bin/env sh
# Tier-1 gate: the workspace must build and test hermetically.
#
# --offline  proves no network / registry access is needed (the build is
#            path-dependencies only; see DESIGN.md "Hermetic builds").
# --locked   proves Cargo.lock is in sync with the manifests.
#
# DBP_BENCH_ITERS keeps the bench compile-and-smoke cheap in CI.
set -eux

cargo build --release --offline --locked --workspace
cargo test -q --offline --locked --workspace
cargo clippy --offline --locked --workspace -- -D warnings
cargo fmt --all --check
cargo check --benches --offline --locked --workspace
# Benches run with the package dir as cwd, so hand them an absolute path.
# One warmup + five timed iterations: enough for a meaningful per-bench
# *floor* (the statistic the perf gate compares), still cheap.
DBP_BENCH_ITERS=5 DBP_BENCH_WARMUP=1 DBP_BENCH_JSON="$(pwd)/BENCH_results.json" \
    cargo bench -q --offline --locked -p dbp-bench --bench micro
./target/release/jsonlint --require-key benchmarks BENCH_results.json

# Perf-regression gate: compare the fresh micro-bench *floors* (min_ns
# — preemption only ever slows an iteration, so the floor is what a
# structural slowdown must move) against the committed baseline and
# publish the verdict as PERF_summary.json. Fatal — a regressed or
# missing benchmark fails CI. The tolerance is widened from the ±35%
# default because CI runs few iterations on shared runners: the gate
# exists to catch structural slowdowns (an accidental O(n²), a dropped
# memo), not scheduling jitter.
DBP_PERF_GATE=1 DBP_PERF_TOLERANCE=0.6 ./target/release/bench_all --perf-only \
    --baseline BENCH_baseline.json --bench-results BENCH_results.json \
    --perf-out "$(pwd)/PERF_summary.json" \
    --history-append "$(pwd)/BENCH_history.jsonl"
./target/release/jsonlint --require-key benchmarks --require-key gate_passed PERF_summary.json
# The longitudinal history grew by exactly one line, and that line is a
# schema-stamped JSON object of this run's medians.
tail -n 1 BENCH_history.jsonl | ./target/release/jsonlint --require-key medians

# Telemetry smoke test: a tiny traced run must produce machine-readable
# exports that the in-tree JSON parser accepts.
./target/release/dbpsim run --bench mcf,povray \
    --instructions 30000 --warmup 10000 --epoch 20000 --policy dbp \
    --trace-out target/ci-trace.json --metrics-out target/ci-metrics.json \
    > /dev/null
./target/release/jsonlint --require-key traceEvents target/ci-trace.json
./target/release/jsonlint --require-key epochs --require-key events target/ci-metrics.json

# Experiment-suite determinism gate: the quick suite's stdout (every
# table of every experiment) must be byte-identical between the serial
# reference path (DBP_JOBS=1) and a parallel run (DBP_JOBS=2). Timing
# goes to stderr, so the diff sees simulation results only. The parallel
# run also publishes the suite-timing JSON alongside BENCH_results.json,
# and runs self-profiled — so the diff additionally proves an enabled
# profiler does not perturb a single table of the suite.
DBP_QUICK=1 DBP_JOBS=1 ./target/release/bench_all \
    > target/ci-suite-serial.txt 2> /dev/null
DBP_QUICK=1 DBP_JOBS=2 ./target/release/bench_all \
    --json "$(pwd)/SUITE_timing.json" \
    --profile-out "$(pwd)/PROF_suite.json" \
    > target/ci-suite-parallel.txt
diff target/ci-suite-serial.txt target/ci-suite-parallel.txt
# Time-skip equivalence gate: the same quick suite driven by the
# always-stepped core (DBP_NO_SKIP=1 pins every System to per-cycle
# ticking) must print byte-identical tables. Together with the
# byte-identity property tests this proves the event-driven skipping
# path changes nothing observable end to end.
DBP_QUICK=1 DBP_JOBS=2 DBP_NO_SKIP=1 ./target/release/bench_all \
    > target/ci-suite-stepped.txt 2> /dev/null
diff target/ci-suite-serial.txt target/ci-suite-stepped.txt
./target/release/jsonlint --require-key experiments --require-key total_wall_ns SUITE_timing.json
./target/release/jsonlint --require-key spans --require-key counters PROF_suite.json
./target/release/dbpprof PROF_suite.json > /dev/null

# Latency-anatomy gate. The breakdown invariant (components sum exactly
# to the total, u64 equality) asserts in every build profile; run the
# named tests in release to prove the checks survive optimisation.
cargo test -q --release --offline --locked -p dbp-memctrl breakdown_components_sum
cargo test -q --release --offline --locked -p dbp-obs record_read_rejects

# Self-profiling gate. The span exact-sum invariant (self + children ==
# total, u64 equality) likewise asserts in every build profile.
cargo test -q --release --offline --locked -p dbp-obs exact_sum

# A profiled smoke run must export a schema-stamped profile document that
# jsonlint accepts and dbpprof renders in all three modes; the folded
# stacks are published as a CI artifact.
./target/release/dbpsim run --bench mcf,povray \
    --instructions 30000 --warmup 10000 --epoch 20000 --policy dbp \
    --profile-out target/ci-profile.json > /dev/null
./target/release/jsonlint --require-key spans --require-key counters target/ci-profile.json
./target/release/dbpprof target/ci-profile.json > /dev/null
./target/release/dbpprof --chrome target/ci-profile-chrome.json target/ci-profile.json
./target/release/jsonlint --require-key traceEvents target/ci-profile-chrome.json
./target/release/dbpprof --folded target/ci-profile.json > PROF_folded.txt
test -s PROF_folded.txt

# The export must be deterministic: two identical seeded runs produce
# byte-identical --latency-out JSON, and both jsonlint modes (file arg
# and stdin) plus the dbpreport renderer must accept it.
./target/release/dbpsim run --bench mcf,libquantum \
    --instructions 30000 --warmup 10000 --epoch 20000 --policy shared \
    --latency-out target/ci-latency.json > /dev/null
./target/release/dbpsim run --bench mcf,libquantum \
    --instructions 30000 --warmup 10000 --epoch 20000 --policy shared \
    --latency-out target/ci-latency-repeat.json > /dev/null
diff target/ci-latency.json target/ci-latency-repeat.json
./target/release/jsonlint --require-key interference --require-key cores target/ci-latency.json
./target/release/jsonlint --require-key interference < target/ci-latency.json
./target/release/dbpreport target/ci-latency.json > /dev/null
./target/release/dbpreport --md < target/ci-latency.json > /dev/null

# Decision-audit gate. The shadow rack is observation-only and fully
# deterministic: two identical seeded runs must export byte-identical
# --audit-out JSON (on top of the property test that proves the
# simulation itself is byte-identical with the rack attached vs
# detached). Both jsonlint and the two renderers must accept the
# document, as well as the committed full-fidelity audit.
./target/release/dbpsim run --bench mcf,libquantum \
    --instructions 30000 --warmup 10000 --epoch 20000 --policy dbp \
    --audit-out target/ci-audit.json > /dev/null
./target/release/dbpsim run --bench mcf,libquantum \
    --instructions 30000 --warmup 10000 --epoch 20000 --policy dbp \
    --audit-out target/ci-audit-repeat.json > /dev/null
diff target/ci-audit.json target/ci-audit-repeat.json
./target/release/jsonlint --require-key shadows --require-key convergence target/ci-audit.json
./target/release/dbpaudit target/ci-audit.json > /dev/null
./target/release/dbpaudit --md target/ci-audit.json > /dev/null
./target/release/dbpreport target/ci-audit.json > /dev/null
./target/release/dbpaudit results/diag_audit.json > /dev/null

# Publish the rendered interference diagnostic (quick mode) as a CI
# artifact next to BENCH_results.json / SUITE_timing.json.
DBP_QUICK=1 ./target/release/diag_interference > REPORT_interference.txt 2> /dev/null
